// Command datagen emits the benchmark data sets as CSV files.
//
// Usage:
//
//	datagen -workload mobile -tuples 1000 -out calls.csv
//	datagen -workload mobile -tuples 1000 -zipf 1.8 -out skewed.csv
//	datagen -workload mobile -tuples 100000 -stations 1000000 -out big-dict.csv
//	datagen -workload tpch -scale 1.0 -zipf 1.2 -dir tpch/
//	datagen -workload flights -cities 4 -per-leg 100 -dir flights/
//
// -zipf sets the key-skew exponent (s > 1, larger = more skewed): the
// mobile workload's station popularity (default 1.3) and, when set,
// the TPC-H foreign keys custkey/partkey/suppkey (default uniform).
// -stations sets the mobile workload's string cardinality (distinct
// base-station names); sweeping it from 10 to 1e6 sizes the join-key
// dictionary for the string-interning benchmarks.
// Fixed -seed values make every skewed dataset reproducible.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/relation"
	"repro/internal/workloads"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run() error {
	workload := flag.String("workload", "mobile", "mobile | tpch | flights")
	tuples := flag.Int("tuples", 1000, "mobile: call records to generate")
	stations := flag.Int("stations", 0, "mobile: distinct base stations / station names (0 = default 50); sweepable 10..1e6 to size the string dictionary")
	scale := flag.Float64("scale", 1.0, "tpch: DBGEN-style scale unit")
	cities := flag.Int("cities", 4, "flights: cities on the route")
	perLeg := flag.Int("per-leg", 100, "flights: flights per leg")
	seed := flag.Int64("seed", 1, "generator seed")
	zipf := flag.Float64("zipf", 0, "key-skew Zipf exponent (0 = workload default; mobile stations, tpch foreign keys)")
	out := flag.String("out", "", "output CSV (single-relation workloads)")
	dir := flag.String("dir", ".", "output directory (multi-relation workloads)")
	flag.Parse()

	writeRel := func(r *relation.Relation, path string) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := relation.WriteCSV(f, r); err != nil {
			return err
		}
		fmt.Printf("%s: %d tuples\n", path, r.Cardinality())
		return nil
	}

	switch *workload {
	case "mobile":
		cfg := workloads.DefaultMobileConfig()
		cfg.Tuples = *tuples
		cfg.Stations = *stations
		cfg.Seed = *seed
		cfg.ZipfS = *zipf
		path := *out
		if path == "" {
			path = "calls.csv"
		}
		return writeRel(workloads.MobileTable(cfg), path)
	case "tpch":
		cfg := workloads.DefaultTPCHConfig()
		cfg.Scale = *scale
		cfg.Seed = *seed
		cfg.ZipfS = *zipf
		db, err := workloads.TPCHDB(cfg, 100)
		if err != nil {
			return err
		}
		for _, name := range []string{"nation", "supplier", "customer", "orders", "lineitem", "part"} {
			r, err := db.Relation(name)
			if err != nil {
				return err
			}
			if err := writeRel(r, filepath.Join(*dir, name+".csv")); err != nil {
				return err
			}
		}
		return nil
	case "flights":
		cfg := workloads.DefaultFlightsConfig()
		cfg.Cities = *cities
		cfg.FlightsPerLeg = *perLeg
		cfg.Seed = *seed
		db, err := workloads.FlightsDB(cfg, 100)
		if err != nil {
			return err
		}
		for leg := 0; leg < cfg.Cities-1; leg++ {
			name := workloads.LegName(leg)
			r, err := db.Relation(name)
			if err != nil {
				return err
			}
			if err := writeRel(r, filepath.Join(*dir, name+".csv")); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown workload %q", *workload)
	}
}
