// Command tracecheck validates that a file parses as Chrome
// trace-event JSON: a non-empty traceEvents array whose events carry a
// name and a known phase, with non-negative, monotonically
// non-decreasing timestamps (metadata events excluded). CI runs it
// over the bench smoke run's -trace output so a malformed export
// fails the build instead of failing silently in Perfetto.
//
// Usage:
//
//	tracecheck trace.json [more.json ...]
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

type traceEvent struct {
	Name string `json:"name"`
	Ph   string `json:"ph"`
	Ts   int64  `json:"ts"`
	Dur  int64  `json:"dur"`
	Pid  int    `json:"pid"`
	Tid  int    `json:"tid"`
}

type traceFile struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck trace.json [more.json ...]")
		os.Exit(2)
	}
	for _, path := range os.Args[1:] {
		if err := check(path); err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
			os.Exit(1)
		}
	}
}

func check(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc traceFile
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("not valid trace-event JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("traceEvents is empty")
	}
	spans, meta := 0, 0
	lastTs := int64(-1)
	for i, e := range doc.TraceEvents {
		if e.Name == "" {
			return fmt.Errorf("event %d has no name", i)
		}
		switch e.Ph {
		case "M":
			meta++
			continue
		case "X", "i", "B", "E", "b", "e", "I":
		default:
			return fmt.Errorf("event %d (%s) has unknown phase %q", i, e.Name, e.Ph)
		}
		if e.Ts < 0 || e.Dur < 0 {
			return fmt.Errorf("event %d (%s) has negative time: ts=%d dur=%d", i, e.Name, e.Ts, e.Dur)
		}
		if e.Ts < lastTs {
			return fmt.Errorf("event %d (%s) breaks timestamp monotonicity: ts=%d after %d", i, e.Name, e.Ts, lastTs)
		}
		lastTs = e.Ts
		spans++
	}
	if spans == 0 {
		return fmt.Errorf("trace holds only metadata events")
	}
	fmt.Printf("%s: ok (%d events, %d metadata)\n", path, spans, meta)
	return nil
}
