// Command benchdiff compares two `go test -bench` output files and
// fails (exit 1) when any benchmark present in both regressed beyond a
// threshold factor — in ns/op, and (when both files carry -benchmem
// columns) in allocs/op. It is the CI benchmark-regression smoke:
// cheap -benchtime 1x runs are noisy, so the time threshold is coarse
// (default 3x) and repeated runs of a benchmark (-count N) aggregate
// by taking the minimum — the least-noisy observation. Allocation
// counts are deterministic, so their threshold can be much tighter.
//
// Usage:
//
//	benchdiff [-threshold 3.0] base.txt head.txt
//	benchdiff [-threshold ns=3,allocs=2] base.txt head.txt
//
// A bare number sets the ns/op factor only (back-compatible); the
// key=value form sets each gate separately. An allocs gate is skipped
// for benchmarks whose base run recorded no allocs/op column or zero
// allocations.
//
// Benchmarks only present in one file (new or deleted) are ignored.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// benchVal is one benchmark's aggregated observation: min ns/op over
// repeated runs, and the allocs/op of that same minimum-time run
// (hasAllocs marks whether the column was present at all).
type benchVal struct {
	ns        float64
	allocs    float64
	hasAllocs bool
}

// thresholds carries the per-metric regression gates. A zero factor
// disables that gate.
type thresholds struct {
	ns     float64
	allocs float64
}

// parseThresholds accepts either a bare factor ("3" — ns/op only,
// back-compatible) or a comma-separated key=value list
// ("ns=3,allocs=2") naming the gates explicitly.
func parseThresholds(s string) (thresholds, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return thresholds{}, fmt.Errorf("empty threshold")
	}
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		if v <= 0 {
			return thresholds{}, fmt.Errorf("threshold %q must be > 0", s)
		}
		return thresholds{ns: v}, nil
	}
	var th thresholds
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return thresholds{}, fmt.Errorf("bad threshold %q (want ns=F,allocs=F or a bare factor)", part)
		}
		v, err := strconv.ParseFloat(kv[1], 64)
		if err != nil || v <= 0 {
			return thresholds{}, fmt.Errorf("bad threshold factor %q", part)
		}
		switch kv[0] {
		case "ns":
			th.ns = v
		case "allocs":
			th.allocs = v
		default:
			return thresholds{}, fmt.Errorf("unknown threshold metric %q (want ns or allocs)", kv[0])
		}
	}
	if th.ns == 0 && th.allocs == 0 {
		return thresholds{}, fmt.Errorf("threshold %q names no gate", s)
	}
	return th, nil
}

// parseBench extracts name → aggregated {ns/op, allocs/op} from a
// `go test -bench` output file. Lines look like:
//
//	BenchmarkShuffle/workers=4-8   	      14	 146089017 ns/op	33098440 B/op	   21445 allocs/op
//
// The trailing -N GOMAXPROCS suffix is stripped so runs from machines
// with different core counts still match; -count N repetitions keep
// the minimum-time run's values.
func parseBench(path string) (map[string]benchVal, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]benchVal)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// Find the units and take the number before each.
		var v benchVal
		found := false
		for i := 2; i < len(fields); i++ {
			switch fields[i] {
			case "ns/op":
				if x, err := strconv.ParseFloat(fields[i-1], 64); err == nil {
					v.ns, found = x, true
				}
			case "allocs/op":
				if x, err := strconv.ParseFloat(fields[i-1], 64); err == nil {
					v.allocs, v.hasAllocs = x, true
				}
			}
		}
		if !found {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		if prev, ok := out[name]; !ok || v.ns < prev.ns {
			out[name] = v
		}
	}
	return out, sc.Err()
}

func main() {
	thresholdFlag := flag.String("threshold", "3.0", "regression gates: a bare ns/op factor, or ns=F,allocs=F")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [-threshold f | -threshold ns=F,allocs=F] base.txt head.txt\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	th, err := parseThresholds(*thresholdFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	base, err := parseBench(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	head, err := parseBench(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	var names []string
	for name := range base {
		if _, ok := head[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		// A gate comparing nothing must not pass: a renamed benchmark
		// or a drifted -bench regex would otherwise go green forever.
		fmt.Fprintln(os.Stderr, "benchdiff: no common benchmarks between the two files")
		os.Exit(1)
	}
	regressed := 0
	w := 0
	for _, n := range names {
		if len(n) > w {
			w = len(n)
		}
	}
	for _, name := range names {
		b, h := base[name], head[name]
		nsRatio := 0.0
		if b.ns > 0 {
			nsRatio = h.ns / b.ns
		}
		status := "ok"
		if th.ns > 0 && b.ns > 0 && nsRatio > th.ns {
			status = fmt.Sprintf("REGRESSED ns/op (> %.1fx)", th.ns)
			regressed++
		}
		allocCol := ""
		// The allocs gate needs both sides measured and a non-zero
		// base: a benchmark growing from 0 allocations has no ratio and
		// is better caught by the ns gate it would also trip.
		if b.hasAllocs && h.hasAllocs && b.allocs > 0 {
			allocRatio := h.allocs / b.allocs
			allocCol = fmt.Sprintf("  allocs %9.0f → %9.0f  %6.2fx", b.allocs, h.allocs, allocRatio)
			if th.allocs > 0 && allocRatio > th.allocs {
				if status == "ok" {
					status = fmt.Sprintf("REGRESSED allocs/op (> %.1fx)", th.allocs)
					regressed++
				} else {
					status += fmt.Sprintf(" + allocs/op (> %.1fx)", th.allocs)
				}
			}
		}
		fmt.Printf("%-*s  %14.0f  %14.0f  %6.2fx%s  %s\n", w, name, b.ns, h.ns, nsRatio, allocCol, status)
	}
	if regressed > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d benchmark(s) regressed\n", regressed)
		os.Exit(1)
	}
}
