// Command benchdiff compares two `go test -bench` output files and
// fails (exit 1) when any benchmark present in both regressed in
// ns/op beyond a threshold factor. It is the CI benchmark-regression
// smoke: cheap -benchtime 1x runs are noisy, so the threshold is
// coarse (default 3x) and repeated runs of a benchmark (-count N)
// aggregate by taking the minimum — the least-noisy observation.
//
// Usage:
//
//	benchdiff [-threshold 3.0] base.txt head.txt
//
// Benchmarks only present in one file (new or deleted) are ignored.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// parseBench extracts name → min ns/op from a `go test -bench` output
// file. Lines look like:
//
//	BenchmarkShuffle/workers=4-8   	      14	 146089017 ns/op	...
//
// The trailing -N GOMAXPROCS suffix is stripped so runs from machines
// with different core counts still match.
func parseBench(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]float64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// Find the "ns/op" unit and take the number before it.
		var ns float64
		found := false
		for i := 2; i < len(fields); i++ {
			if fields[i] == "ns/op" {
				v, err := strconv.ParseFloat(fields[i-1], 64)
				if err == nil {
					ns, found = v, true
				}
				break
			}
		}
		if !found {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		if prev, ok := out[name]; !ok || ns < prev {
			out[name] = ns
		}
	}
	return out, sc.Err()
}

func main() {
	threshold := flag.Float64("threshold", 3.0, "fail when head ns/op exceeds base ns/op by this factor")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [-threshold f] base.txt head.txt\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	base, err := parseBench(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	head, err := parseBench(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	var names []string
	for name := range base {
		if _, ok := head[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		// A gate comparing nothing must not pass: a renamed benchmark
		// or a drifted -bench regex would otherwise go green forever.
		fmt.Fprintln(os.Stderr, "benchdiff: no common benchmarks between the two files")
		os.Exit(1)
	}
	regressed := 0
	w := 0
	for _, n := range names {
		if len(n) > w {
			w = len(n)
		}
	}
	for _, name := range names {
		b, h := base[name], head[name]
		ratio := 0.0
		if b > 0 {
			ratio = h / b
		}
		status := "ok"
		if b > 0 && ratio > *threshold {
			status = fmt.Sprintf("REGRESSED (> %.1fx)", *threshold)
			regressed++
		}
		fmt.Printf("%-*s  %14.0f  %14.0f  %6.2fx  %s\n", w, name, b, h, ratio, status)
	}
	if regressed > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d benchmark(s) regressed beyond %.1fx\n", regressed, *threshold)
		os.Exit(1)
	}
}
