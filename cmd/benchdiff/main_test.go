package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseBench(t *testing.T) {
	p := writeTemp(t, "b.txt", `goos: linux
BenchmarkShuffle/workers=4-8   	      14	 146089017 ns/op	33098440 B/op	   21445 allocs/op
BenchmarkShuffle/workers=4-8   	      14	 140000000 ns/op	33098440 B/op	   21400 allocs/op
BenchmarkSkewedShuffle/baseline 	       1	5619440322 ns/op	         7.312 balance
BenchmarkOther-16          	     326	   3595167 ns/op
not a benchmark line
PASS
`)
	got, err := parseBench(p)
	if err != nil {
		t.Fatal(err)
	}
	// -count runs aggregate by min ns; GOMAXPROCS suffix stripped; the
	// allocs value follows the minimum-time run.
	shuffle := got["BenchmarkShuffle/workers=4"]
	if shuffle.ns != 140000000 {
		t.Errorf("shuffle ns = %v", shuffle.ns)
	}
	if !shuffle.hasAllocs || shuffle.allocs != 21400 {
		t.Errorf("shuffle allocs = %v (hasAllocs=%v), want 21400", shuffle.allocs, shuffle.hasAllocs)
	}
	if got["BenchmarkSkewedShuffle/baseline"].ns != 5619440322 {
		t.Errorf("skewed = %v", got["BenchmarkSkewedShuffle/baseline"].ns)
	}
	other := got["BenchmarkOther"]
	if other.ns != 3595167 {
		t.Errorf("other = %v", other.ns)
	}
	// No -benchmem columns on that line: the allocs gate must not fire.
	if other.hasAllocs {
		t.Errorf("other unexpectedly has allocs: %v", other.allocs)
	}
	if len(got) != 3 {
		t.Errorf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
}

func TestParseThresholds(t *testing.T) {
	cases := []struct {
		in      string
		want    thresholds
		wantErr bool
	}{
		{in: "3.0", want: thresholds{ns: 3}},                          // bare factor: ns-only, back-compatible
		{in: " 2 ", want: thresholds{ns: 2}},                          // whitespace tolerated
		{in: "ns=3,allocs=2", want: thresholds{ns: 3, allocs: 2}},     // both gates
		{in: "allocs=1.5", want: thresholds{allocs: 1.5}},             // allocs alone
		{in: "ns=4", want: thresholds{ns: 4}},                         // ns alone, named form
		{in: "allocs=2,ns=3", want: thresholds{ns: 3, allocs: 2}},     // order-insensitive
		{in: "", wantErr: true},
		{in: "0", wantErr: true},        // non-positive factor
		{in: "-1", wantErr: true},
		{in: "ns=0", wantErr: true},     // non-positive named factor
		{in: "bytes=2", wantErr: true},  // unknown metric
		{in: "ns=abc", wantErr: true},   // unparsable factor
		{in: "ns", wantErr: true},       // missing =value
	}
	for _, c := range cases {
		got, err := parseThresholds(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("parseThresholds(%q) = %+v, want error", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseThresholds(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("parseThresholds(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}
