package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseBench(t *testing.T) {
	p := writeTemp(t, "b.txt", `goos: linux
BenchmarkShuffle/workers=4-8   	      14	 146089017 ns/op	33098440 B/op	   21445 allocs/op
BenchmarkShuffle/workers=4-8   	      14	 140000000 ns/op	33098440 B/op	   21445 allocs/op
BenchmarkSkewedShuffle/baseline 	       1	5619440322 ns/op	         7.312 balance
BenchmarkOther-16          	     326	   3595167 ns/op
not a benchmark line
PASS
`)
	got, err := parseBench(p)
	if err != nil {
		t.Fatal(err)
	}
	// -count runs aggregate by min; GOMAXPROCS suffix stripped.
	if got["BenchmarkShuffle/workers=4"] != 140000000 {
		t.Errorf("shuffle = %v", got["BenchmarkShuffle/workers=4"])
	}
	if got["BenchmarkSkewedShuffle/baseline"] != 5619440322 {
		t.Errorf("skewed = %v", got["BenchmarkSkewedShuffle/baseline"])
	}
	if got["BenchmarkOther"] != 3595167 {
		t.Errorf("other = %v", got["BenchmarkOther"])
	}
	if len(got) != 3 {
		t.Errorf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
}
