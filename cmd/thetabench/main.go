// Command thetabench regenerates the paper's evaluation tables and
// figures on the simulated cluster.
//
// Usage:
//
//	thetabench [-quick] [experiment ...]
//
// With no arguments every experiment runs in paper order. Experiment
// ids: table1 fig6 fig7a fig7b fig8 table2 fig9 fig10 fig11 table3
// fig12 fig13 ablation.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced sweeps (seconds instead of minutes)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	seed := flag.Int64("seed", 1, "suite seed: offsets every experiment's data and sampling seeds (1 = the paper series)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: thetabench [-quick] [-list] [-seed N] [experiment ...]\n")
		fmt.Fprintf(os.Stderr, "experiments: %s\n", strings.Join(bench.Experiments(), " "))
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, id := range bench.Experiments() {
			fmt.Println(id)
		}
		return
	}
	suite := bench.NewSuite(*quick)
	suite.Seed = *seed
	ids := flag.Args()
	if len(ids) == 0 {
		ids = bench.Experiments()
	}
	for _, id := range ids {
		start := time.Now()
		if err := suite.Run(id, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "thetabench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "[%s completed in %s]\n", id, time.Since(start).Round(time.Millisecond))
	}
}
