// Command thetabench regenerates the paper's evaluation tables and
// figures on the simulated cluster.
//
// Usage:
//
//	thetabench [-quick] [-cpuprofile f] [-memprofile f] [experiment ...]
//
// With no arguments every experiment runs in paper order. Experiment
// ids: table1 fig6 fig7a fig7b fig8 table2 fig9 fig10 fig11 table3
// fig12 fig13 ablation.
//
// -cpuprofile and -memprofile write pprof profiles covering the
// selected experiments (inspect with `go tool pprof`), so performance
// PRs can show where the wall-clock goes.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced sweeps (seconds instead of minutes)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	seed := flag.Int64("seed", 1, "suite seed: offsets every experiment's data and sampling seeds (1 = the paper series)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to `file`")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the selected experiments to `file`")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: thetabench [-quick] [-list] [-seed N] [-cpuprofile f] [-memprofile f] [experiment ...]\n")
		fmt.Fprintf(os.Stderr, "experiments: %s\n", strings.Join(bench.Experiments(), " "))
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, id := range bench.Experiments() {
			fmt.Println(id)
		}
		return
	}
	// stopCPU finishes the CPU profile; called on the error path too,
	// because os.Exit skips defers and a profile without its footer is
	// unreadable — and a failing run is exactly the one worth profiling.
	stopCPU := func() {}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "thetabench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "thetabench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		stopped := false
		stopCPU = func() {
			if stopped {
				return
			}
			stopped = true
			pprof.StopCPUProfile()
			f.Close()
		}
		defer stopCPU()
	}
	suite := bench.NewSuite(*quick)
	suite.Seed = *seed
	ids := flag.Args()
	if len(ids) == 0 {
		ids = bench.Experiments()
	}
	for _, id := range ids {
		start := time.Now()
		if err := suite.Run(id, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "thetabench: %s: %v\n", id, err)
			stopCPU()
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "[%s completed in %s]\n", id, time.Since(start).Round(time.Millisecond))
	}
	if *memprofile != "" {
		// Finalize the CPU profile first: CPU profiling should not
		// overlap the heap snapshot, and the os.Exit error paths below
		// would otherwise skip the deferred stop and truncate it.
		stopCPU()
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "thetabench: -memprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC() // materialize retained allocations before the snapshot
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "thetabench: -memprofile: %v\n", err)
			os.Exit(1)
		}
	}
}
