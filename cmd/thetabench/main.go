// Command thetabench regenerates the paper's evaluation tables and
// figures on the simulated cluster.
//
// Usage:
//
//	thetabench [-quick] [-cpuprofile f] [-memprofile f] \
//	           [-trace f] [-metrics f] [-pprof addr] [experiment ...]
//
// With no arguments every experiment runs in paper order. Experiment
// ids: table1 fig6 fig7a fig7b fig8 table2 fig9 fig10 fig11 table3
// fig12 fig13 ablation.
//
// -cpuprofile and -memprofile write pprof profiles covering the
// selected experiments (inspect with `go tool pprof`), so performance
// PRs can show where the wall-clock goes. -trace records execution
// spans (map tasks, shuffle merges, reducers, plan waves, merges) as
// Chrome trace-event JSON — load the file at ui.perfetto.dev.
// -metrics exports the structured counters/histograms as JSON, and
// -pprof serves the live net/http/pprof endpoints while the run lasts.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/obs"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced sweeps (seconds instead of minutes)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	seed := flag.Int64("seed", 1, "suite seed: offsets every experiment's data and sampling seeds (1 = the paper series)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to `file`")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the selected experiments to `file`")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON of the selected experiments to `file` (open in Perfetto)")
	metricsOut := flag.String("metrics", "", "write the structured metrics registry as JSON to `file`")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on `addr` (e.g. localhost:6060) for the duration of the run")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: thetabench [-quick] [-list] [-seed N] [-cpuprofile f] [-memprofile f] [-trace f] [-metrics f] [-pprof addr] [experiment ...]\n")
		fmt.Fprintf(os.Stderr, "experiments: %s\n", strings.Join(bench.Experiments(), " "))
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, id := range bench.Experiments() {
			fmt.Println(id)
		}
		return
	}
	// stopCPU finishes the CPU profile; called on the error path too,
	// because os.Exit skips defers and a profile without its footer is
	// unreadable — and a failing run is exactly the one worth profiling.
	stopCPU := func() {}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "thetabench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "thetabench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		stopped := false
		stopCPU = func() {
			if stopped {
				return
			}
			stopped = true
			pprof.StopCPUProfile()
			f.Close()
		}
		defer stopCPU()
	}
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "thetabench: -pprof: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "[pprof listening on http://%s/debug/pprof/]\n", *pprofAddr)
	}
	suite := bench.NewSuite(*quick)
	suite.Seed = *seed
	// Observability sinks: the tracer is per-run; metrics accumulate in
	// the process-wide registry so hot-path components without context
	// access (dictionary probes, key-column builds) land in the export.
	if *traceOut != "" || *metricsOut != "" {
		suite.Obs = &obs.Obs{Metrics: obs.Default()}
		if *traceOut != "" {
			suite.Obs.Tracer = obs.NewTracer()
		}
	}
	// writeObs flushes the trace/metrics files; like stopCPU it runs on
	// the error path too — a failing experiment is worth inspecting.
	writeObs := func() {
		if suite.Obs == nil {
			return
		}
		if *traceOut != "" {
			if err := writeFileWith(*traceOut, suite.Obs.Tracer.WriteJSON); err != nil {
				fmt.Fprintf(os.Stderr, "thetabench: -trace: %v\n", err)
			}
		}
		if *metricsOut != "" {
			if err := writeFileWith(*metricsOut, suite.Obs.Metrics.WriteJSON); err != nil {
				fmt.Fprintf(os.Stderr, "thetabench: -metrics: %v\n", err)
			}
		}
		suite.Obs = nil
	}
	ids := flag.Args()
	if len(ids) == 0 {
		ids = bench.Experiments()
	}
	for _, id := range ids {
		start := time.Now()
		if err := suite.Run(id, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "thetabench: %s: %v\n", id, err)
			stopCPU()
			writeObs()
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "[%s completed in %s]\n", id, time.Since(start).Round(time.Millisecond))
	}
	writeObs()
	if *memprofile != "" {
		// Finalize the CPU profile first: CPU profiling should not
		// overlap the heap snapshot, and the os.Exit error paths below
		// would otherwise skip the deferred stop and truncate it.
		stopCPU()
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "thetabench: -memprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC() // materialize retained allocations before the snapshot
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "thetabench: -memprofile: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeFileWith creates path and streams write into it, returning the
// first error from create, write or close.
func writeFileWith(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
