// Quickstart: plan and execute a three-way theta-join with the
// paper's optimizer in ~60 lines.
//
// The query joins three small integer tables on a chain of inequality
// conditions — the case where no equality key exists and the
// Hilbert-curve partitioning of the cross-product hyper-cube
// (Algorithm 1) is the only one-job option.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/mr"
	"repro/internal/predicate"
	"repro/internal/query"
	"repro/internal/relation"
)

func makeTable(name string, n int, rng *rand.Rand) *relation.Relation {
	schema := relation.MustSchema(
		relation.Column{Name: "v", Kind: relation.KindInt},
	)
	r := relation.New(name, schema)
	for i := 0; i < n; i++ {
		r.MustAppend(relation.Tuple{relation.Int(int64(rng.Intn(100)))})
	}
	return r
}

func main() {
	rng := rand.New(rand.NewSource(42))

	// 1. Build three relations and register them; NewDB samples
	//    statistics and adds unique row IDs.
	db, err := core.NewDB(500, 1,
		makeTable("A", 80, rng),
		makeTable("B", 60, rng),
		makeTable("C", 40, rng),
	)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Declare the N-join query: A.v < B.v AND B.v >= C.v.
	q, err := query.New("quickstart",
		[]string{"A", "B", "C"},
		[]predicate.Condition{
			predicate.C("A", "v", predicate.LT, "B", "v"),
			predicate.C("B", "v", predicate.GE, "C", "v"),
		})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Plan on a simulated cluster with 32 processing units.
	planner := core.NewPlanner(mr.DefaultConfig(), 32)
	plan, err := planner.Plan(q, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(plan)

	// 4. Execute: the jobs really run (map, shuffle, reduce) and the
	//    simulated clock reports the cluster-scale makespan.
	res, err := planner.Execute(plan, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d result rows, %.1fs simulated makespan, %d merge steps\n",
		res.Output.Cardinality(), res.Makespan, res.MergeCount)

	// 5. Sanity-check against the in-memory nested-loop oracle.
	naive, err := core.Naive(q, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive oracle agrees: %v (%d rows)\n",
		naive.Cardinality() == res.Output.Cardinality(), naive.Cardinality())
}
