// Travelplan reproduces the paper's §2.2 motivating scenario: given
// flight tables FI_{i,i+1} between consecutive cities and a stay-over
// window [l1, l2] at each intermediate city, find every itinerary
// c_1 → c_2 → … → c_n whose layovers fall inside the window — a chain
// multi-way theta-join with two inequality conditions per hop:
//
//	FI_i.at + l1 < FI_{i+1}.dt  AND  FI_{i+1}.dt < FI_i.at + l2
//
// Run with: go run ./examples/travelplan [-cities 4] [-flights 150]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/mr"
	"repro/internal/workloads"
)

func main() {
	cities := flag.Int("cities", 4, "cities on the route (>= 3)")
	flights := flag.Int("flights", 150, "flights per leg")
	kp := flag.Int("kp", 64, "processing units")
	flag.Parse()

	cfg := workloads.DefaultFlightsConfig()
	cfg.Cities = *cities
	cfg.FlightsPerLeg = *flights
	db, err := workloads.FlightsDB(cfg, 500)
	if err != nil {
		log.Fatal(err)
	}
	q, err := workloads.FlightsQuery(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(q)
	fmt.Printf("stay-over window: %d–%d hours\n\n", cfg.StayMin/3600, cfg.StayMax/3600)

	planner := core.NewPlanner(mr.DefaultConfig(), *kp)
	plan, err := planner.Plan(q, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(plan)

	res, err := planner.Execute(plan, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d valid itineraries, %.1fs simulated makespan\n",
		res.Output.Cardinality(), res.Makespan)

	// Print a few itineraries as flight-number chains.
	show := res.Output.Cardinality()
	if show > 5 {
		show = 5
	}
	for i := 0; i < show; i++ {
		row := res.Output.Tuples[i]
		fmt.Printf("itinerary %d:", i+1)
		for leg := 0; leg < cfg.Cities-1; leg++ {
			col := res.Output.Schema.MustLookup(workloads.LegName(leg) + ".flightno")
			fmt.Printf("  flight %d", row[col].Int64())
		}
		fmt.Println()
	}
}
