// Mobilecalls runs the paper's four mobile CDR benchmark queries
// (§6.3.1) — concurrent calls at the same / different base stations,
// and users served by the same / different stations three days in a
// row — comparing the paper's planner against the YSmart-, Hive- and
// Pig-style baselines on the same simulated cluster.
//
// Run with: go run ./examples/mobilecalls [-gb 20] [-kp 96]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/mr"
	"repro/internal/workloads"
)

func main() {
	gb := flag.Float64("gb", 20, "nominal data volume in GB")
	kp := flag.Int("kp", 96, "processing units")
	flag.Parse()

	cfg := mr.DefaultConfig()
	if cfg.MapSlots > *kp {
		cfg.MapSlots = *kp
	}
	fullReducers := cfg.ReduceSlots // baselines request this even when kp is lower
	cfg.ReduceSlots = *kp

	fmt.Printf("mobile CDR benchmark, %0.f GB nominal, kP <= %d\n\n", *gb, *kp)
	for qn := 1; qn <= 4; qn++ {
		q, err := workloads.MobileQuery(qn)
		if err != nil {
			log.Fatal(err)
		}
		mcfg := workloads.DefaultMobileConfig()
		mcfg.Tuples = workloads.MobileTuplesFor(qn, *gb)
		mcfg.NominalGB = *gb
		mcfg.Seed = int64(qn)
		db, err := workloads.MobileDB(mcfg, 300)
		if err != nil {
			log.Fatal(err)
		}

		planner := core.NewPlanner(cfg, *kp)
		plan, err := planner.Plan(q, db)
		if err != nil {
			log.Fatal(err)
		}
		res, err := planner.Execute(plan, db)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (%s)\n", q.Name, q)
		fmt.Printf("  our method : %8.1fs  (%d jobs, %d rows)\n",
			res.Makespan, len(plan.Jobs), res.Output.Cardinality())

		for _, st := range []baselines.Strategy{baselines.YSmart(), baselines.Hive(), baselines.Pig()} {
			bres, err := baselines.Run(context.Background(), st, cfg, planner.Params, q, db, fullReducers)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-11s: %8.1fs  (%d stages)\n", st.Name, bres.TotalTime, len(bres.Steps))
		}
		fmt.Println()
	}
}
