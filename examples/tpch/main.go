// Tpch runs the paper's four TPC-H benchmark queries (§6.3.2) — Q7,
// Q17, Q18 and Q21 with the added inequality join predicates — and
// prints the planner's chosen physical operators alongside the
// baseline comparison.
//
// The equi-connected TPC-H queries exercise the share-grid operator
// (the Afrati–Ullman one-job multiway join with theta residuals),
// while the mobile workload of examples/mobilecalls exercises the
// Hilbert cube; together they cover the planner's operator family.
//
// Run with: go run ./examples/tpch [-gb 200] [-kp 96]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/mr"
	"repro/internal/workloads"
)

func main() {
	gb := flag.Float64("gb", 200, "nominal data volume in GB")
	kp := flag.Int("kp", 96, "processing units")
	flag.Parse()

	cfg := mr.DefaultConfig()
	if cfg.MapSlots > *kp {
		cfg.MapSlots = *kp
	}
	fullReducers := cfg.ReduceSlots
	cfg.ReduceSlots = *kp

	fmt.Printf("TPC-H benchmark, %.0f GB nominal, kP <= %d\n\n", *gb, *kp)
	for _, qn := range []int{7, 17, 18, 21} {
		q, err := workloads.TPCHQuery(qn)
		if err != nil {
			log.Fatal(err)
		}
		tcfg := workloads.DefaultTPCHConfig()
		tcfg.Scale = workloads.TPCHRowsFor(qn, *gb)
		tcfg.NominalGB = *gb
		tcfg.Seed = int64(qn)
		db, err := workloads.TPCHDB(tcfg, 300)
		if err != nil {
			log.Fatal(err)
		}

		planner := core.NewPlanner(cfg, *kp)
		plan, err := planner.Plan(q, db)
		if err != nil {
			log.Fatal(err)
		}
		res, err := planner.Execute(plan, db)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d conditions over %d relations\n",
			q.Name, len(q.Conditions), len(q.Relations))
		for _, j := range plan.Jobs {
			fmt.Printf("  job %-10s [%s] conds=%v kR=%d\n", j.Name, j.Kind, j.EdgeIDs, j.Reducers)
		}
		fmt.Printf("  our method : %8.1fs (%d rows)\n", res.Makespan, res.Output.Cardinality())
		for _, st := range []baselines.Strategy{baselines.YSmart(), baselines.Hive(), baselines.Pig()} {
			bres, err := baselines.Run(context.Background(), st, cfg, planner.Params, q, db, fullReducers)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-11s: %8.1fs\n", st.Name, bres.TotalTime)
		}
		fmt.Println()
	}
}
